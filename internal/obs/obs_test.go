package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanSnapshotTree(t *testing.T) {
	root := NewSpan("∩Tp")
	l := root.NewChild("scan(r)")
	r := root.NewChild("scan(s)")
	l.AddTuples(10)
	l.AddBatches(1)
	r.AddTuples(7)
	root.AddTuples(5)
	root.SetWindows(17)
	root.SetGallops(3)
	root.AddWall(30 * time.Microsecond)
	l.AddWall(10 * time.Microsecond)
	r.AddWall(5 * time.Microsecond)

	st := root.Snapshot()
	if st.Op != "∩Tp" || st.TuplesOut != 5 || st.TuplesIn != 17 {
		t.Fatalf("root snapshot wrong: %+v", st)
	}
	if st.Windows != 17 || st.Gallops != 3 {
		t.Fatalf("advancer counters wrong: %+v", st)
	}
	if len(st.Children) != 2 || st.Children[0].TuplesOut != 10 || st.Children[1].TuplesOut != 7 {
		t.Fatalf("children wrong: %+v", st.Children)
	}
	if st.SelfMicros != 30-15 {
		t.Fatalf("self time: got %d, want 15", st.SelfMicros)
	}

	var b strings.Builder
	st.WriteIndented(&b)
	out := b.String()
	if !strings.Contains(out, "∩Tp") || !strings.Contains(out, "  scan(r)") {
		t.Fatalf("indented rendering missing nodes:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("want 3 lines, got:\n%s", out)
	}
}

func TestSpanConcurrentSnapshot(t *testing.T) {
	root := NewSpan("merge")
	shards := make([]*Span, 4)
	for i := range shards {
		shards[i] = root.NewChild("shard")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, sp := range shards {
		wg.Add(1)
		go func(sp *Span) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					sp.AddTuples(1)
					sp.AddWall(time.Nanosecond)
				}
			}
		}(sp)
	}
	for i := 0; i < 100; i++ {
		_ = root.Snapshot() // must be race-free against writers
	}
	close(stop)
	wg.Wait()
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		us   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10},
		{1 << 25, histMaxExp}, {1<<25 + 1, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.us); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.us, got, c.want)
		}
	}
}

func TestHistogramSnapshotAndQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket le=128µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // bucket le=16384µs
	}
	st := h.Snapshot()
	if st.Count != 100 {
		t.Fatalf("count: got %d", st.Count)
	}
	if want := int64(90*100 + 10*10000); st.SumMicros != want {
		t.Fatalf("sum: got %d, want %d", st.SumMicros, want)
	}
	if st.P50Micros != 128 || st.P90Micros != 128 {
		t.Fatalf("p50/p90: got %g/%g, want 128/128", st.P50Micros, st.P90Micros)
	}
	if st.P99Micros != 16384 {
		t.Fatalf("p99: got %g, want 16384", st.P99Micros)
	}
}

func TestHistogramPrometheusFormat(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Minute) // +Inf bucket
	var b strings.Builder
	h.WritePrometheus(&b, "tpset_test_seconds", "test histogram")
	out := b.String()
	for _, want := range []string{
		"# TYPE tpset_test_seconds histogram",
		`tpset_test_seconds_bucket{le="1e-06"} 0`,
		`tpset_test_seconds_bucket{le="4e-06"} 1`,
		`tpset_test_seconds_bucket{le="+Inf"} 2`,
		"tpset_test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and non-decreasing.
	if strings.Index(out, `{le="+Inf"} 2`) < strings.Index(out, `{le="4e-06"} 1`) {
		t.Fatalf("buckets not cumulative:\n%s", out)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				_ = h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8*per {
		t.Fatalf("count: got %d, want %d", got, 8*per)
	}
	st := h.Snapshot()
	if math.IsInf(st.P99Micros, 1) {
		t.Fatalf("p99 inf on bounded observations")
	}
}

func TestRequestIDAndLoggerContext(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Fatalf("request IDs not unique: %q %q", a, b)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("RequestID: got %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("empty ctx RequestID: got %q", got)
	}
	if Logger(context.Background()) != nil {
		t.Fatal("empty ctx Logger should be nil")
	}
	l := NopLogger()
	ctx = WithLogger(ctx, l)
	if Logger(ctx) != l {
		t.Fatal("Logger round-trip failed")
	}
	l.Info("discarded") // must not panic
}
