package obs

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// Span is one node of a per-query execution trace: the live, writable
// counterpart of SpanStats. Operators record into their span while the
// query runs; Snapshot freezes the whole tree afterwards.
//
// Counters are atomics because a span tree is written concurrently: the
// engine's shard plans record from dedicated goroutines, and the
// consumer may snapshot after abandoning the stream early, while
// producers are still draining. Within one span each counter is still
// single-writer in practice; atomics make the cross-goroutine snapshot
// race-free without a lock on the hot path.
//
// The children slice is built while the plan is compiled (single
// goroutine, before any execution) and only read afterwards, so it
// needs no synchronization.
type Span struct {
	op       string
	children []*Span

	tuples  atomic.Int64 // tuples emitted by this operator
	batches atomic.Int64 // batches emitted (0 on pure tuple pulls)
	windows atomic.Int64 // advancer candidate windows popped (set ops)
	gallops atomic.Int64 // run-skip gallops taken (SkipTo calls)
	wall    atomic.Int64 // inclusive wall nanoseconds across pulls
	stall   atomic.Int64 // nanoseconds blocked on channel send/receive
}

// NewSpan returns a root span labeled op (may be empty; plan
// compilation labels spans as it assigns them to operators).
func NewSpan(op string) *Span { return &Span{op: op} }

// NewChild appends and returns a child span. Must only be called during
// plan compilation, before execution starts.
func (s *Span) NewChild(op string) *Span {
	c := &Span{op: op}
	s.children = append(s.children, c)
	return c
}

// SetOp labels the span with its operator. Plan-compilation time only.
func (s *Span) SetOp(op string) { s.op = op }

// PrefixOp prepends a label fragment (the engine tags shard subtrees
// with their shard index). Plan-compilation time only.
func (s *Span) PrefixOp(p string) { s.op = p + s.op }

// Op returns the operator label.
func (s *Span) Op() string { return s.op }

// AddTuples records n tuples emitted.
func (s *Span) AddTuples(n int64) { s.tuples.Add(n) }

// AddBatches records n batches emitted.
func (s *Span) AddBatches(n int64) { s.batches.Add(n) }

// SetWindows overwrites the windows-popped counter (the advancer counts
// locally; the traced cursor publishes after each pull).
func (s *Span) SetWindows(n int64) { s.windows.Store(n) }

// SetGallops overwrites the gallops-taken counter.
func (s *Span) SetGallops(n int64) { s.gallops.Store(n) }

// AddGallops records n run-skip gallops received (scans count the
// SkipTo calls that reach them).
func (s *Span) AddGallops(n int64) { s.gallops.Add(n) }

// AddWall records inclusive wall time spent inside a pull.
func (s *Span) AddWall(d time.Duration) { s.wall.Add(int64(d)) }

// AddStall records time spent blocked on a channel operation.
func (s *Span) AddStall(d time.Duration) { s.stall.Add(int64(d)) }

// Tuples returns the tuples-emitted counter.
func (s *Span) Tuples() int64 { return s.tuples.Load() }

// SpanStats is the frozen, JSON-serializable form of a Span — one node
// of the per-operator stats tree returned by the query endpoints.
// Counts are exact: TuplesOut of an operator node equals the number of
// tuples the operator actually emitted, and TuplesIn the sum of its
// children's TuplesOut. Wall time is inclusive of children (the span
// measures its pulls, which pull the children in turn); SelfMicros is
// the derived exclusive share, clamped at zero.
type SpanStats struct {
	Op          string       `json:"op"`
	TuplesIn    int64        `json:"tuplesIn"`
	TuplesOut   int64        `json:"tuplesOut"`
	Batches     int64        `json:"batches,omitempty"`
	Windows     int64        `json:"windows,omitempty"`
	Gallops     int64        `json:"gallops,omitempty"`
	WallMicros  int64        `json:"wallMicros"`
	SelfMicros  int64        `json:"selfMicros"`
	StallMicros int64        `json:"stallMicros,omitempty"`
	Children    []*SpanStats `json:"children,omitempty"`
}

// Snapshot freezes the span tree into SpanStats. Safe to call while
// producers are still recording (each counter is read atomically); the
// numbers are then a consistent-enough point-in-time view, and exact
// once the stream is drained or closed.
func (s *Span) Snapshot() *SpanStats {
	st := &SpanStats{
		Op:          s.op,
		TuplesOut:   s.tuples.Load(),
		Batches:     s.batches.Load(),
		Windows:     s.windows.Load(),
		Gallops:     s.gallops.Load(),
		WallMicros:  s.wall.Load() / int64(time.Microsecond),
		StallMicros: s.stall.Load() / int64(time.Microsecond),
	}
	var childWall int64
	for _, c := range s.children {
		cs := c.Snapshot()
		st.TuplesIn += cs.TuplesOut
		childWall += cs.WallMicros
		st.Children = append(st.Children, cs)
	}
	if st.SelfMicros = st.WallMicros - childWall; st.SelfMicros < 0 {
		st.SelfMicros = 0
	}
	return st
}

// WriteIndented renders the stats tree human-readably, one operator per
// line, indented by plan depth — the tpquery -trace output.
func (st *SpanStats) WriteIndented(w io.Writer) {
	st.writeIndented(w, 0)
}

func (st *SpanStats) writeIndented(w io.Writer, depth int) {
	fmt.Fprintf(w, "%-*s%-*s out=%-8d in=%-8d wall=%-10s self=%-10s",
		2*depth, "", 32-2*depth, st.Op, st.TuplesOut, st.TuplesIn,
		microsString(st.WallMicros), microsString(st.SelfMicros))
	if st.Batches > 0 {
		fmt.Fprintf(w, " batches=%d", st.Batches)
	}
	if st.Windows > 0 {
		fmt.Fprintf(w, " windows=%d", st.Windows)
	}
	if st.Gallops > 0 {
		fmt.Fprintf(w, " gallops=%d", st.Gallops)
	}
	if st.StallMicros > 0 {
		fmt.Fprintf(w, " stall=%s", microsString(st.StallMicros))
	}
	fmt.Fprintln(w)
	for _, c := range st.Children {
		c.writeIndented(w, depth+1)
	}
}

// microsString renders a microsecond count as a duration string.
func microsString(us int64) string {
	d := time.Duration(us) * time.Microsecond
	s := d.String()
	// Trim sub-microsecond zero noise Duration.String never produces
	// here; keep as-is otherwise.
	return strings.TrimSuffix(s, ".0s")
}
