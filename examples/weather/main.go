// Command weather demonstrates TP set operations on temporal weather
// predictions — the application domain that motivates the paper's Meteo
// Swiss experiments (§VII-C).
//
// Two forecasting models issue per-station predictions of the form "station
// X will be above freezing" with a confidence and a validity interval.
// Predictions are erroneous per-time-point measurements, so each carries a
// probability. The example answers three operational questions:
//
//	consensus  = modelA ∩Tp modelB   — when do both models predict it?
//	anyWarning = modelA ∪Tp modelB   — when does at least one predict it?
//	disputed   = modelA −Tp modelB   — when does A predict it and B (at
//	                                   least possibly) not?
//
// It also prints the overlapping factor of the two inputs — the §VII-B
// dataset metric — and per-station statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/tpset/tpset"
)

const (
	stations       = 5
	daysPerStation = 6
)

func main() {
	modelA := forecast("modelA", 11)
	modelB := forecast("modelB", 23)

	fmt.Printf("Model A: %d predictions, Model B: %d predictions, overlapping factor %.2f\n\n",
		modelA.Len(), modelB.Len(), tpset.OverlapFactor(modelA, modelB))

	consensus, err := tpset.Intersect(modelA, modelB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Consensus (modelA ∩Tp modelB) — both models agree, probability = P(A)·P(B):")
	fmt.Print(consensus)

	anyWarning, err := tpset.Union(modelA, modelB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAny-warning (modelA ∪Tp modelB): %d maximal intervals\n", anyWarning.Len())

	disputed, err := tpset.Except(modelA, modelB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDisputed (modelA −Tp modelB) — note tuples like a∧¬b where B overlaps" +
		" with probability < 1:")
	fmt.Print(disputed)

	// Change preservation in action: every output interval is maximal for
	// its lineage, and adjacent intervals always differ in lineage.
	fmt.Println("\nPer-model statistics (Table IV metrics):")
	fmt.Println(tpset.ComputeStats(modelA))
}

// forecast builds one model's prediction relation: per station, a chain of
// prediction windows with varying confidence.
func forecast(name string, seed int64) *tpset.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := tpset.NewRelation(name, "Station")
	id := 0
	for st := 0; st < stations; st++ {
		fact := tpset.F(fmt.Sprintf("ZRH-%02d", st))
		day := tpset.Time(rng.Int63n(3))
		for d := 0; d < daysPerStation; d++ {
			span := 1 + rng.Int63n(4)
			conf := 0.4 + 0.55*rng.Float64()
			r.AddBase(fact, fmt.Sprintf("%s_%d", name, id), day, day+span, conf)
			id++
			day += span + rng.Int63n(3)
		}
	}
	return r
}
