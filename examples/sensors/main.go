// Command sensors demonstrates TP set operations on RFID sensor data — the
// second application class the paper's introduction motivates (erroneous
// per-time-point measurements from sensor networks).
//
// A warehouse has two RFID reader gates. Each read event is uncertain (tag
// collisions, reflections), so "pallet P is present" holds with a
// probability over the interval between consecutive antenna sweeps. The
// example computes, from the two gates' observation relations:
//
//	confirmed = gate1 ∩Tp gate2  — presence confirmed by both gates
//	observed  = gate1 ∪Tp gate2  — presence observed by at least one gate
//	ghosts    = gate1 −Tp gate2  — gate1 readings not corroborated by gate2
//
// and then audits the inventory: which pallets were observed but never
// appear in the shipping manifest (observed −Tp manifest) — candidate
// shrinkage. The manifest is deterministic data (p = 1), showing how
// conventional temporal data embeds in the TP model: a −Tp with a p = 1
// tuple eliminates the interval outright (lineage x∧¬m has probability 0
// when P(m)=1, and the tuple is still reported with its lineage so
// downstream consumers can distinguish 'impossible' from 'absent').
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/tpset/tpset"
)

func main() {
	gate1 := readings("g1", 101, 0.55, 0.95)
	gate2 := readings("g2", 202, 0.65, 0.99)

	confirmed, err := tpset.Intersect(gate1, gate2)
	if err != nil {
		log.Fatal(err)
	}
	observed, err := tpset.Union(gate1, gate2)
	if err != nil {
		log.Fatal(err)
	}
	ghosts, err := tpset.Except(gate1, gate2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gate1=%d readings, gate2=%d readings\n", gate1.Len(), gate2.Len())
	fmt.Printf("confirmed=%d, observed=%d, gate1-only=%d maximal intervals\n\n",
		confirmed.Len(), observed.Len(), ghosts.Len())

	fmt.Println("Presence confirmed by both gates:")
	fmt.Print(confirmed)

	// Audit against the deterministic shipping manifest.
	manifest := tpset.NewRelation("manifest", "Pallet")
	manifest.AddBase(tpset.F("pallet-A"), "m1", 0, 40, 1.0)
	manifest.AddBase(tpset.F("pallet-B"), "m2", 5, 25, 1.0)

	audit, err := tpset.Except(observed, manifest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAudit (observed −Tp manifest) — pallet-C was never manifested:")
	for _, t := range audit.Tuples {
		marker := ""
		if t.Prob == 0 {
			marker = "   <- impossible (manifest covers it with p=1)"
		}
		fmt.Printf("  %v%s\n", t, marker)
	}
}

// readings synthesizes one gate's observation relation for three pallets.
func readings(name string, seed int64, pLo, pHi float64) *tpset.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := tpset.NewRelation(name, "Pallet")
	id := 0
	for _, pallet := range []string{"pallet-A", "pallet-B", "pallet-C"} {
		t := tpset.Time(rng.Int63n(4))
		for sweep := 0; sweep < 4; sweep++ {
			dur := 2 + rng.Int63n(6)
			p := pLo + (pHi-pLo)*rng.Float64()
			r.AddBase(tpset.F(pallet), fmt.Sprintf("%s_%d", name, id), t, t+dur, p)
			id++
			t += dur + rng.Int63n(4)
		}
	}
	return r
}
