// Command quickstart reproduces the paper's running example (Fig. 1): a
// supermarket predicts, per day, which products are in stock but neither
// ordered nor bought, by evaluating the TP set query
//
//	Q = c −Tp (a ∪Tp b)
//
// over the relations a (productsBought), b (productsOrdered) and
// c (productsInStock). The printed result matches Fig. 1c of the paper,
// e.g. ('milk', c1∧¬a1, [2,4), 0.42).
package main

import (
	"fmt"
	"log"

	"github.com/tpset/tpset"
)

func main() {
	a := buildBought()
	b := buildOrdered()
	c := buildInStock()

	fmt.Println("Input relations (Fig. 1a):")
	fmt.Print(a, b, c)

	// Either compose operators directly...
	ab, err := tpset.Union(a, b)
	if err != nil {
		log.Fatal(err)
	}
	q, err := tpset.Except(c, ab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ = c −Tp (a ∪Tp b) — products in stock but not wanted (Fig. 1c):")
	fmt.Print(q)

	// ...or parse the query grammar of Def. 4.
	parsed, err := tpset.ParseQuery("c - (a | b)")
	if err != nil {
		log.Fatal(err)
	}
	out, err := tpset.Eval(parsed, map[string]*tpset.Relation{"a": a, "b": b, "c": c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSame query via ParseQuery(%q): %d tuples, non-repeating=%v\n",
		"c - (a | b)", out.Len(), tpset.IsNonRepeating(parsed))

	// The lineage-aware temporal windows behind the 'milk' difference of
	// Fig. 6, for illustration.
	milkC, _ := tpset.Eval(tpset.MustParseQuery("sigma[Product='milk'](c)"),
		map[string]*tpset.Relation{"c": c})
	milkA, _ := tpset.Eval(tpset.MustParseQuery("sigma[Product='milk'](a)"),
		map[string]*tpset.Relation{"a": a})
	fmt.Println("\nLAWA windows for σ[Product='milk'](c) vs σ[Product='milk'](a) (Fig. 6):")
	for _, w := range tpset.Windows(milkC, milkA) {
		fmt.Printf("  %v\n", w)
	}
}

func buildBought() *tpset.Relation {
	a := tpset.NewRelation("a", "Product")
	a.AddBase(tpset.F("milk"), "a1", 2, 10, 0.3)
	a.AddBase(tpset.F("chips"), "a2", 4, 7, 0.8)
	a.AddBase(tpset.F("dates"), "a3", 1, 3, 0.6)
	return a
}

func buildOrdered() *tpset.Relation {
	b := tpset.NewRelation("b", "Product")
	b.AddBase(tpset.F("milk"), "b1", 5, 9, 0.6)
	b.AddBase(tpset.F("chips"), "b2", 3, 6, 0.9)
	return b
}

func buildInStock() *tpset.Relation {
	c := tpset.NewRelation("c", "Product")
	c.AddBase(tpset.F("milk"), "c1", 1, 4, 0.6)
	c.AddBase(tpset.F("milk"), "c2", 6, 8, 0.7)
	c.AddBase(tpset.F("chips"), "c3", 4, 5, 0.7)
	c.AddBase(tpset.F("chips"), "c4", 7, 9, 0.8)
	return c
}
