package tpset_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (§VII), at sizes suitable for `go test -bench`. The full sweeps with all
// sizes, budgets and CSV output live in cmd/tpbench; these benchmarks pin
// down single representative points per figure so that regressions in any
// approach/operation pair surface in CI.
//
// Naming: BenchmarkFig7a/LAWA-20000 etc. mirror the paper's figure ids.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tpset/tpset/internal/bench"
	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

// benchPoint runs one (approach, op) cell over a fixed generated input.
func benchPoint(b *testing.B, name string, op core.Op, gen func() (r, s *relation.Relation)) {
	a, ok := bench.ApproachByName(name)
	if !ok {
		b.Fatalf("unknown approach %s", name)
	}
	if !a.Supports[op] {
		b.Skipf("%s does not support %v (Table II)", name, op)
	}
	r, s := gen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(op, r, s); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Bench benches every applicable approach for one op at a single-fact,
// ovl≈0.6 input of n tuples (the midpoint shape of Fig. 7).
func fig7Bench(b *testing.B, op core.Op, n int, quadOK int) {
	for _, a := range bench.Approaches() {
		if !a.Supports[op] {
			continue
		}
		size := n
		// Quadratic baselines run at a reduced size so the bench suite
		// stays fast; the real sweep is cmd/tpbench's job.
		if a.Name == "NORM" || a.Name == "TPDB" {
			size = quadOK
		}
		b.Run(fmt.Sprintf("%s-%d", a.Name, size), func(b *testing.B) {
			benchPoint(b, a.Name, op, func() (*relation.Relation, *relation.Relation) {
				return datagen.FixedOverlapPair(size, 1, 1)
			})
		})
	}
}

// BenchmarkFig7a: synthetic single-fact ∩Tp (paper Fig. 7a).
func BenchmarkFig7a(b *testing.B) { fig7Bench(b, core.OpIntersect, 20000, 4000) }

// BenchmarkFig7b: synthetic single-fact −Tp (paper Fig. 7b).
func BenchmarkFig7b(b *testing.B) { fig7Bench(b, core.OpExcept, 20000, 4000) }

// BenchmarkFig7c: synthetic single-fact ∪Tp (paper Fig. 7c).
func BenchmarkFig7c(b *testing.B) { fig7Bench(b, core.OpUnion, 20000, 4000) }

// BenchmarkFig8: the large-scale ∩Tp comparison, LAWA vs OIP (paper
// Fig. 8), at 500K tuples per relation.
func BenchmarkFig8(b *testing.B) {
	for _, name := range []string{"LAWA", "OIP"} {
		b.Run(name, func(b *testing.B) {
			benchPoint(b, name, core.OpIntersect, func() (*relation.Relation, *relation.Relation) {
				return datagen.FixedOverlapPair(500000, 1, 1)
			})
		})
	}
}

// BenchmarkFig9a: robustness of ∩Tp against the overlapping factor (paper
// Fig. 9a): LAWA and OIP across the Table III configurations at 100K.
func BenchmarkFig9a(b *testing.B) {
	for _, row := range datagen.TableIII {
		row := row
		for _, name := range []string{"LAWA", "OIP"} {
			b.Run(fmt.Sprintf("%s-ovl%g", name, row.OverlapFactor), func(b *testing.B) {
				benchPoint(b, name, core.OpIntersect, func() (*relation.Relation, *relation.Relation) {
					return datagen.Pair(datagen.PairConfig{
						NumTuples: 100000, NumFacts: 1,
						MaxLenR: row.MaxLenR, MaxLenS: row.MaxLenS, MaxGap: 3, Seed: 1,
					})
				})
			})
		}
	}
}

// BenchmarkFig9b: robustness of ∩Tp against the number of distinct facts
// (paper Fig. 9b): all approaches at 6K tuples, facts ∈ {1, 10, 3000}.
func BenchmarkFig9b(b *testing.B) {
	for _, facts := range []int{1, 10, 3000} {
		for _, a := range bench.Approaches() {
			if !a.Supports[core.OpIntersect] {
				continue
			}
			name := a.Name
			b.Run(fmt.Sprintf("%s-%dF", name, facts), func(b *testing.B) {
				benchPoint(b, name, core.OpIntersect, func() (*relation.Relation, *relation.Relation) {
					return datagen.FixedOverlapPair(6000, facts, 1)
				})
			})
		}
	}
}

// benchRealWorld is the shared body of the Fig. 10 / Fig. 11 benchmarks.
func benchRealWorld(b *testing.B, meteo bool, op core.Op) {
	const n = 20000
	var full *relation.Relation
	if meteo {
		full = datagen.Meteo(datagen.MeteoConfig{NumTuples: n, Stations: 80, Seed: 1})
	} else {
		full = datagen.Webkit(datagen.WebkitConfig{NumTuples: n, Seed: 1})
	}
	shifted := datagen.Shifted(full, "s", 2)
	for _, a := range bench.Approaches() {
		if !a.Supports[op] {
			continue
		}
		a := a
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(op, full, shifted); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10a..c: Meteo-like real-world simulation (paper Fig. 10).
func BenchmarkFig10a(b *testing.B) { benchRealWorld(b, true, core.OpIntersect) }
func BenchmarkFig10b(b *testing.B) { benchRealWorld(b, true, core.OpExcept) }
func BenchmarkFig10c(b *testing.B) { benchRealWorld(b, true, core.OpUnion) }

// BenchmarkFig11a..c: Webkit-like real-world simulation (paper Fig. 11).
func BenchmarkFig11a(b *testing.B) { benchRealWorld(b, false, core.OpIntersect) }
func BenchmarkFig11b(b *testing.B) { benchRealWorld(b, false, core.OpExcept) }
func BenchmarkFig11c(b *testing.B) { benchRealWorld(b, false, core.OpUnion) }

// BenchmarkTable4Stats measures the dataset statistics pass itself (the
// Table IV machinery) — it must stay linear to be usable on the large
// generated datasets.
func BenchmarkTable4Stats(b *testing.B) {
	r := datagen.Meteo(datagen.MeteoConfig{NumTuples: 100000, Stations: 80, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relation.ComputeStats(r)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §4) ---

// BenchmarkAblationFusedFilter compares LAWA's fused window→filter→lineage
// pipeline against a decoupled variant that first materializes all windows
// and then filters — quantifying the benefit of finalizing lineage at
// window-creation time.
func BenchmarkAblationFusedFilter(b *testing.B) {
	r, s := datagen.FixedOverlapPair(100000, 1, 1)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Intersect(r, s, core.Options{LazyProb: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decoupled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws := core.Windows(r, s)
			out := relation.New(r.Schema)
			for _, w := range ws {
				if w.LamR != nil && w.LamS != nil {
					out.Tuples = append(out.Tuples,
						relation.NewDerivedLazy(w.Fact, nil, w.Interval()))
				}
			}
		}
	})
}

// BenchmarkAblationProbEval compares eager 1OF probability valuation
// against the lazy (deferred) mode on set-operation outputs.
func BenchmarkAblationProbEval(b *testing.B) {
	r, s := datagen.FixedOverlapPair(100000, 1, 1)
	b.Run("eager1OF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Union(r, s, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Union(r, s, core.Options{LazyProb: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPresorted isolates the sort step of Fig. 5: runs with
// AssumeSorted on pre-sorted inputs vs the default clone-and-sort.
func BenchmarkAblationPresorted(b *testing.B) {
	r, s := datagen.FixedOverlapPair(100000, 1, 1)
	rs, ss := r.Clone(), s.Clone()
	rs.Sort()
	ss.Sort()
	b.Run("sortIncluded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Intersect(r, s, core.Options{LazyProb: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("presorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Intersect(rs, ss, core.Options{AssumeSorted: true, LazyProb: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCountingSort compares the comparison-based sort step
// against the counting-based variant of §VI-B on a dense single-fact
// workload (where counting sort applies) — the case the paper notes can
// bring the overall complexity down to linear.
func BenchmarkAblationCountingSort(b *testing.B) {
	r, _ := datagen.FixedOverlapPair(200000, 1, 1)
	// The generator emits tuples in start-point order, which a pattern-
	// defeating quicksort handles in near-linear time; shuffle so both
	// variants face the general case.
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(r.Tuples), func(i, j int) {
		r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i]
	})
	b.Run("comparison", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := r.Clone()
			b.StartTimer()
			c.Sort()
		}
	})
	b.Run("counting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := r.Clone()
			b.StartTimer()
			c.SortCounting()
		}
	})
}
