package tpset_test

// Integration tests of the public API: end-to-end flows a library user
// would write, including the godoc examples.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/tpset/tpset"
)

func supermarket() (a, b, c *tpset.Relation) {
	a = tpset.NewRelation("a", "Product")
	a.AddBase(tpset.F("milk"), "a1", 2, 10, 0.3)
	a.AddBase(tpset.F("chips"), "a2", 4, 7, 0.8)
	a.AddBase(tpset.F("dates"), "a3", 1, 3, 0.6)
	b = tpset.NewRelation("b", "Product")
	b.AddBase(tpset.F("milk"), "b1", 5, 9, 0.6)
	b.AddBase(tpset.F("chips"), "b2", 3, 6, 0.9)
	c = tpset.NewRelation("c", "Product")
	c.AddBase(tpset.F("milk"), "c1", 1, 4, 0.6)
	c.AddBase(tpset.F("milk"), "c2", 6, 8, 0.7)
	c.AddBase(tpset.F("chips"), "c3", 4, 5, 0.7)
	c.AddBase(tpset.F("chips"), "c4", 7, 9, 0.8)
	return a, b, c
}

func TestPublicAPIFig1(t *testing.T) {
	a, b, c := supermarket()
	q := tpset.MustParseQuery("c - (a | b)")
	out, err := tpset.Eval(q, map[string]*tpset.Relation{"a": a, "b": b, "c": c})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("Fig. 1c: %d tuples\n%s", out.Len(), out)
	}
	opt, err := tpset.EvalOptimized(q, map[string]*tpset.Relation{"a": a, "b": b, "c": c})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Len() != out.Len() {
		t.Fatal("optimizer changed the result")
	}
}

func TestPublicAPISetOps(t *testing.T) {
	a, _, c := supermarket()
	u, err := tpset.Union(a, c)
	if err != nil {
		t.Fatal(err)
	}
	i, err := tpset.Intersect(a, c)
	if err != nil {
		t.Fatal(err)
	}
	e, err := tpset.Except(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 9 || i.Len() != 3 || e.Len() != 7 {
		t.Fatalf("Fig. 3 cardinalities: ∪=%d ∩=%d −=%d", u.Len(), i.Len(), e.Len())
	}
	for _, op := range []tpset.Op{tpset.OpUnion, tpset.OpIntersect, tpset.OpExcept} {
		if _, err := tpset.Apply(op, a, c, tpset.Options{Validate: true}); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
}

func TestPublicAPILineage(t *testing.T) {
	x := tpset.NewVar("x", 0.5)
	y := tpset.NewVar("y", 0.4)
	e := tpset.AndNot(x, tpset.Or(y, nil))
	if e.String() != "x∧¬y" {
		t.Fatalf("lineage: %s", e)
	}
	if p := e.Prob(); math.Abs(p-0.3) > 1e-12 {
		t.Fatalf("prob: %v", p)
	}
	back, err := tpset.ParseLineage("x∧¬y", func(id string) (float64, error) {
		if id == "x" {
			return 0.5, nil
		}
		return 0.4, nil
	})
	if err != nil || back.String() != "x∧¬y" {
		t.Fatalf("parse: %v %v", back, err)
	}
	if null, err := tpset.ParseLineage("null", nil); err != nil || null != nil {
		t.Fatal("null lineage")
	}
}

func TestPublicAPIProjectAndSelect(t *testing.T) {
	r := tpset.NewRelation("sales", "Product", "City")
	r.AddBase(tpset.F("milk", "zurich"), "t1", 1, 5, 0.5)
	r.AddBase(tpset.F("milk", "basel"), "t2", 3, 8, 0.4)
	sel, err := tpset.SelectEq(r, "City", "zurich")
	if err != nil || sel.Len() != 1 {
		t.Fatalf("select: %v %v", sel, err)
	}
	proj, err := tpset.Project(r, "Product")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 3 {
		t.Fatalf("projection fragments: %s", proj)
	}
	if err := proj.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICSV(t *testing.T) {
	a, _, _ := supermarket()
	var buf bytes.Buffer
	if err := tpset.WriteCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := tpset.ReadCSV(strings.NewReader(buf.String()), "a")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != a.Len() {
		t.Fatalf("round trip: %d vs %d", back.Len(), a.Len())
	}
}

func TestPublicAPIWindowsAndStats(t *testing.T) {
	a, _, c := supermarket()
	ws := tpset.Windows(c, a)
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	st := tpset.ComputeStats(c)
	if st.Cardinality != 4 || st.NumFacts != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if f := tpset.OverlapFactor(a, c); f <= 0 || f > 1 {
		t.Fatalf("overlap factor: %v", f)
	}
	if !tpset.IsNonRepeating(tpset.MustParseQuery("a - b")) {
		t.Fatal("non-repeating")
	}
	if tpset.IsNonRepeating(tpset.MustParseQuery("a - a")) {
		t.Fatal("repeating")
	}
}

func TestPublicAPICoalesce(t *testing.T) {
	r := tpset.NewRelation("r", "F")
	lam := tpset.NewVar("x", 0.5)
	r.Tuples = append(r.Tuples,
		tpset.Tuple{Fact: tpset.F("a"), Lineage: lam, T: tpset.NewInterval(1, 3), Prob: 0.5},
		tpset.Tuple{Fact: tpset.F("a"), Lineage: lam, T: tpset.NewInterval(3, 6), Prob: 0.5},
	)
	if got := r.Coalesce(); got.Len() != 1 || got.Tuples[0].T != tpset.NewInterval(1, 6) {
		t.Fatalf("coalesce: %s", got)
	}
}

// TestMultiAttributePipeline runs a realistic end-to-end flow over a
// two-attribute schema: select → project → set operation → probabilities,
// verifying the pieces compose.
func TestMultiAttributePipeline(t *testing.T) {
	sales := tpset.NewRelation("sales", "Product", "City")
	sales.AddBase(tpset.F("milk", "zurich"), "s1", 1, 6, 0.6)
	sales.AddBase(tpset.F("milk", "basel"), "s2", 4, 9, 0.5)
	sales.AddBase(tpset.F("chips", "zurich"), "s3", 2, 5, 0.9)

	stock := tpset.NewRelation("stock", "Product")
	stock.AddBase(tpset.F("milk"), "t1", 0, 12, 0.8)
	stock.AddBase(tpset.F("chips"), "t2", 3, 4, 0.7)

	// Demand per product regardless of city: projection merges cities.
	demand, err := tpset.Project(sales, "Product")
	if err != nil {
		t.Fatal(err)
	}
	// Stocked but (possibly) not demanded.
	idle, err := tpset.Except(stock, demand)
	if err != nil {
		t.Fatal(err)
	}
	if err := idle.ValidateDuplicateFree(); err != nil {
		t.Fatal(err)
	}
	idle.Sort()
	// Expected milk windows: [0,1) t1; [1,4) t1∧¬s1; [4,6) t1∧¬(s1∨s2);
	// [6,9) t1∧¬s2; [9,12) t1. Chips: [3,4) t2∧¬s3.
	if idle.Len() != 6 {
		t.Fatalf("idle stock: %s", idle)
	}
	var milk46 *tpset.Tuple
	for i := range idle.Tuples {
		if idle.Tuples[i].Fact.Key() == "milk" && idle.Tuples[i].T.Ts == 4 {
			milk46 = &idle.Tuples[i]
		}
	}
	if milk46 == nil || milk46.T.Te != 6 {
		t.Fatalf("missing milk [4,6): %s", idle)
	}
	if got, want := milk46.Prob, 0.8*(1-(1-(1-0.6)*(1-0.5))); math.Abs(got-want) > 1e-9 {
		t.Errorf("milk [4,6) prob %v, want %v", got, want)
	}
	// The projected lineage repeats across fragments, so this is exactly
	// a place where downstream lineage can leave 1OF — the probability
	// must still be exact (Shannon fallback).
	for i := range idle.Tuples {
		tu := &idle.Tuples[i]
		if diff := tu.Prob - tu.Lineage.ProbPossibleWorlds(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("tuple %v: prob diverges from possible worlds", tu)
		}
	}
}

// TestSimplifyIntegration: a repeating query's lineage shrinks back to 1OF
// via SimplifyLineage without changing probabilities.
func TestSimplifyIntegration(t *testing.T) {
	a, _, c := supermarket()
	out, err := tpset.Eval(tpset.MustParseQuery("(a | c) & a"),
		map[string]*tpset.Relation{"a": a, "c": c})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Tuples {
		tu := &out.Tuples[i]
		s := tpset.SimplifyLineage(tu.Lineage)
		if s.Size() > tu.Lineage.Size() {
			t.Errorf("simplify grew %s", tu.Lineage)
		}
		if d := s.ProbPossibleWorlds() - tu.Lineage.ProbPossibleWorlds(); d > 1e-9 || d < -1e-9 {
			t.Errorf("simplify changed semantics of %s", tu.Lineage)
		}
	}
}
