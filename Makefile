# Local one-shots mirroring the CI gates. `make lint` is the pre-push
# check: formatting, go vet, and the repo-specific analyzer suite.

GO ?= go

.PHONY: lint fmt vet tpvet test test-race test-invariants

lint: fmt vet tpvet

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

tpvet:
	$(GO) run ./cmd/tpvet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Run the suite with the build-tag assertion layer compiled in
# (internal/invariant): sortedness, duplicate-freeness, column<->row
# mirror, and pool-capacity accounting all panic on violation.
test-invariants:
	$(GO) test -tags tpinvariants ./...
