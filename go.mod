module github.com/tpset/tpset

go 1.22
