// Command tpgen generates TP datasets as CSV: the paper's synthetic
// workloads (§VII-B) and the simulated real-world datasets (§VII-C).
//
// Usage:
//
//	tpgen -kind synthetic -name r -n 100000 -facts 1 -maxlen 3 -maxgap 3 -o r.csv
//	tpgen -kind meteo  -n 100000 -o meteo.csv
//	tpgen -kind webkit -n 100000 -o webkit.csv
//	tpgen -kind shifted -in meteo.csv -o meteo_shifted.csv
//
// The shifted kind derives a second relation per §VII-C: intervals keep
// their lengths but move to start points drawn from the input's start
// distribution.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tpset/tpset/internal/csvio"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/relation"
)

func main() {
	var (
		kind   = flag.String("kind", "synthetic", "synthetic | meteo | webkit | shifted")
		name   = flag.String("name", "r", "relation name and base-variable prefix (synthetic); distinct names keep variable ids globally unique across generated relations")
		n      = flag.Int("n", 100000, "number of tuples")
		facts  = flag.Int("facts", 1, "number of distinct facts (synthetic)")
		maxLen = flag.Int64("maxlen", 3, "max interval length (synthetic)")
		maxGap = flag.Int64("maxgap", 3, "max gap between consecutive same-fact tuples (synthetic)")
		seed   = flag.Int64("seed", 1, "generator seed")
		in     = flag.String("in", "", "input CSV (kind=shifted)")
		out    = flag.String("o", "", "output CSV path (default stdout)")
		stats  = flag.Bool("stats", false, "print Table IV statistics to stderr")
	)
	flag.Parse()

	var (
		r   *relation.Relation
		err error
	)
	switch *kind {
	case "synthetic":
		r = datagen.Synthetic(datagen.SyntheticConfig{
			Name: *name, NumTuples: *n, NumFacts: *facts,
			MaxLen: *maxLen, MaxGap: *maxGap, Seed: *seed,
		})
	case "meteo":
		r = datagen.Meteo(datagen.MeteoConfig{NumTuples: *n, Stations: 80, Seed: *seed})
	case "webkit":
		r = datagen.Webkit(datagen.WebkitConfig{NumTuples: *n, Seed: *seed})
	case "shifted":
		if *in == "" {
			fatal("kind=shifted needs -in <csv>")
		}
		var base *relation.Relation
		base, err = csvio.ReadFile(*in, "base")
		if err != nil {
			fatal("%v", err)
		}
		r = datagen.Shifted(base, "sh", *seed)
	default:
		fatal("unknown -kind %q", *kind)
	}

	if err := r.ValidateDuplicateFree(); err != nil {
		fatal("generator bug: %v", err)
	}
	if *stats {
		fmt.Fprint(os.Stderr, relation.ComputeStats(r))
	}
	if *out == "" {
		if err := csvio.Write(os.Stdout, r); err != nil {
			fatal("%v", err)
		}
		return
	}
	if err := csvio.WriteFile(*out, r); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d tuples to %s\n", r.Len(), *out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpgen: "+format+"\n", args...)
	os.Exit(1)
}
