// Command tpserve runs the TP query service: an HTTP/JSON server with a
// versioned relation catalog, partition-parallel query evaluation and an
// LRU query-result cache (see internal/server and DESIGN.md).
//
// Usage:
//
//	tpserve -addr :8080 -rel a=bought.csv -rel c=stock.csv
//	tpserve -addr :8080 -gen r:100000:1000 -gen s:100000:1000
//	tpserve -addr :8080 -data-dir /var/lib/tpset
//
// The catalog is seeded from CSV files (-rel name=path.csv, repeatable)
// and/or generated synthetic relations (-gen name:tuples:facts,
// repeatable; §VII-B shapes). Further relations can be loaded at runtime
// with PUT /relations/{name}.
//
// Endpoints:
//
//	GET    /healthz              liveness, catalog size, build identity
//	GET    /metrics              counters + phase latency histograms
//	                             (JSON; Prometheus text on Accept: text/plain)
//	GET    /relations            relation names and versions
//	PUT    /relations/{name}     load or replace a relation (JSON);
//	                             with -data-dir, a 2xx means the admission
//	                             is WAL-fsynced: it survives kill -9
//	GET    /relations/{name}     dump a relation (JSON)
//	DELETE /relations/{name}     drop a relation (with -data-dir, durable
//	                             on 2xx like PUT)
//	GET    /stats/{name}         Table IV statistics
//	POST   /query                {"query":"c - (a | b)", "workers":8}
//	POST   /query/stream         same body; NDJSON stream (meta line,
//	                             one tuple per line, {"done":true} trailer),
//	                             flushed incrementally, result cache bypassed
//	POST   /query/explain        same body; runs the plan and returns the
//	                             per-operator trace, no result payload
//
// Durability (-data-dir): the directory holds one memory-mappable
// columnar segment per relation plus a write-ahead log. Every mutation
// is appended to the WAL and fsynced before its HTTP response — the 2xx
// is the durability acknowledgement — while segment rewrites are
// batched and applied on a size threshold, on graceful shutdown
// (SIGINT/SIGTERM drains in-flight requests, then applies and fsyncs
// pending WAL records), and on startup replay after a crash. A restart
// against the same -data-dir memory-maps the segments and serves
// bit-identical results without re-ingesting; CSV/-gen seeding then
// merely re-admits (and persists) the seed relations. Without -data-dir
// the catalog is memory-only and this contract does not apply.
//
// Robustness: per-query deadlines (-query-timeout, tightened per
// request with "timeoutMillis" → 504), bounded admission
// (-max-concurrent-queries / -max-queued-queries → 429 + Retry-After
// under overload), result budgets (-max-result-tuples → 422; streams
// abort with an NDJSON error trailer), and panic recovery (500 + stack
// to the structured log, never a dead process). When a WAL write fails
// — disk full, dying device — the store enters degraded read-only
// mode: mutations answer 503, reads keep serving the restored catalog,
// /healthz reports "degraded", and a background probe (-probe-interval)
// re-enables writes once the disk recovers.
//
// Query bodies accept "trace":true to get a per-operator execution
// trace in the response envelope (stream trailer for /query/stream).
// -log-level enables structured JSON request logs; -debug-addr serves
// net/http/pprof on a separate listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux (-debug-addr)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/tpset/tpset/internal/csvio"
	"github.com/tpset/tpset/internal/datagen"
	"github.com/tpset/tpset/internal/faultfs"
	"github.com/tpset/tpset/internal/segment"
	"github.com/tpset/tpset/internal/server"
)

// repeatable collects repeated string flags.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var rels, gens repeatable
	flag.Var(&rels, "rel", "name=path.csv: seed the catalog from a CSV file (repeatable)")
	flag.Var(&gens, "gen", "name:tuples:facts: seed a synthetic §VII-B relation (repeatable)")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "default worker budget per query (0 = GOMAXPROCS)")
		cache     = flag.Int("cache", server.DefaultCacheSize, "result-cache capacity in entries (negative disables)")
		seed      = flag.Int64("seed", 1, "generator seed (-gen)")
		logLevel  = flag.String("log-level", "", "enable JSON request logs to stderr at this level: debug|info|warn|error (empty disables)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof debug endpoints on this address (empty disables)")
		dataDir   = flag.String("data-dir", "", "durable segment directory: restore the catalog from it at startup and WAL every mutation (empty = memory-only)")

		queryTimeout  = flag.Duration("query-timeout", 0, "per-query evaluation deadline; requests can tighten it with timeoutMillis but never exceed it (0 = none)")
		maxConcurrent = flag.Int("max-concurrent-queries", 0, "queries evaluating at once (0 = 4x GOMAXPROCS, negative = unlimited)")
		maxQueued     = flag.Int("max-queued-queries", 0, "queries waiting for an evaluation slot before 429 (0 = 4x the concurrency bound, negative = no queue)")
		maxTuples     = flag.Int("max-result-tuples", 0, "result-size budget per query: overflow answers 422, streams abort with an error trailer (0 = unlimited)")
		probeInterval = flag.Duration("probe-interval", server.DefaultProbeInterval, "degraded-store recovery probe cadence (with -data-dir)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: slowloris bound on request headers")
		readTimeout       = flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout: full-request-read bound, sized for 256MiB relation PUTs")
		writeTimeout      = flag.Duration("write-timeout", 0, "http.Server WriteTimeout; 0 (the default) keeps long NDJSON streams alive — per-query work is bounded by -query-timeout instead")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		maxHeaderBytes    = flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")

		chaosENOSPC = flag.String("chaos-enospc-file", "", "fault injection: while this file exists, every store write fails with a no-space error (chaos/CI only)")
	)
	flag.Parse()

	cacheSize := *cache
	if cacheSize == 0 {
		cacheSize = -1 // flag 0 means "no cache"; Config 0 means "default"
	}
	var logger *slog.Logger
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fatalf("-log-level %q: want debug|info|warn|error", *logLevel)
		}
		logger = slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		CacheSize:       cacheSize,
		Logger:          logger,
		QueryTimeout:    *queryTimeout,
		MaxConcurrent:   *maxConcurrent,
		MaxQueued:       *maxQueued,
		MaxResultTuples: *maxTuples,
	})

	var store *segment.Store
	if *dataDir != "" {
		var err error
		if *chaosENOSPC != "" {
			// Chaos lane: the trigger FS fails every mutating operation
			// with ENOSPC while the sentinel file exists, so CI can drive
			// the whole disk-full → degraded → recovered arc end to end
			// (touch the file, watch writes 503, remove it, watch the
			// probe re-arm) without filling a real disk.
			fmt.Fprintf(os.Stderr, "tpserve: CHAOS: writes fail with ENOSPC while %s exists\n", *chaosENOSPC)
			store, err = segment.OpenStoreFS(*dataDir, faultfs.NewTrigger(faultfs.OS{}, *chaosENOSPC))
		} else {
			store, err = segment.OpenStore(*dataDir)
		}
		if err != nil {
			fatalf("opening data dir %s: %v", *dataDir, err)
		}
		if err := srv.AttachStore(store); err != nil {
			fatalf("restoring from %s: %v", *dataDir, err)
		}
		fmt.Fprintf(os.Stderr, "tpserve: restored %d segment(s) from %s\n", store.SegmentCount(), *dataDir)
	}

	if *debugAddr != "" {
		// The pprof import registered its handlers on DefaultServeMux; the
		// API below serves its own mux, so the profiling surface is only
		// reachable through this (typically loopback-bound) listener.
		go func() {
			fmt.Fprintf(os.Stderr, "tpserve: pprof debug endpoints on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "tpserve: debug listener: %v\n", err)
			}
		}()
	}

	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fatalf("-rel %q: want name=path.csv", spec)
		}
		rel, err := csvio.ReadFile(path, name)
		if err != nil {
			fatalf("loading %s: %v", spec, err)
		}
		if _, err := srv.Load(name, rel); err != nil {
			fatalf("loading %s: %v", spec, err)
		}
		fmt.Fprintf(os.Stderr, "tpserve: loaded %s (%d tuples) from %s\n", name, rel.Len(), path)
	}
	for i, spec := range gens {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			fatalf("-gen %q: want name:tuples:facts", spec)
		}
		n, err1 := strconv.Atoi(parts[1])
		facts, err2 := strconv.Atoi(parts[2])
		if parts[0] == "" || err1 != nil || err2 != nil || n < 1 || facts < 1 {
			fatalf("-gen %q: want name:tuples:facts with positive counts", spec)
		}
		rel := datagen.Synthetic(datagen.SyntheticConfig{
			Name: parts[0], NumTuples: n, NumFacts: facts,
			MaxLen: 3, MaxGap: 3, Seed: *seed + int64(i),
		})
		if _, err := srv.Load(parts[0], rel); err != nil {
			fatalf("generating %s: %v", spec, err)
		}
		fmt.Fprintf(os.Stderr, "tpserve: generated %s (%d tuples, %d facts)\n", parts[0], rel.Len(), facts)
	}

	fmt.Fprintf(os.Stderr, "tpserve: listening on %s (%d relations, cache %d entries)\n",
		*addr, len(srv.Relations()), *cache)

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and —
	// with a data dir — apply and fsync pending WAL records so a clean
	// stop leaves no replay work for the next start. Acknowledged
	// mutations are durable either way (WAL fsync precedes the 2xx);
	// the flush only converges segments with the WAL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After a WAL write failure the store latches degraded (mutations
	// 503, reads keep serving); this probe re-arms writes once the disk
	// recovers. No-op without -data-dir.
	srv.StartRecoveryProbe(ctx, *probeInterval)
	// Timeout split: ReadHeaderTimeout/ReadTimeout/IdleTimeout bound
	// slow or idle clients, but WriteTimeout stays 0 by default — it
	// would kill long NDJSON streams mid-flight, and per-query work is
	// already bounded by -query-timeout, which aborts the stream with a
	// clean error trailer instead of a severed connection.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "tpserve: shutting down\n")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "tpserve: shutdown: %v\n", err)
		}
		if store != nil {
			if err := store.Close(); err != nil {
				fatalf("flushing data dir: %v", err)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpserve: "+format+"\n", args...)
	os.Exit(1)
}
