// Command tpquery evaluates a TP set query over relations stored as CSV
// files and prints the result relation (fact, lineage, interval,
// probability) — a minimal command-line shell for the library.
//
// Usage:
//
//	tpquery -rel a=bought.csv -rel b=ordered.csv -rel c=stock.csv \
//	        -q "c - (a | b)"
//
// Flags select the execution algorithm (lawa or norm), the worker budget
// (-workers above one evaluates on the partition-parallel engine),
// streaming execution (-stream evaluates through a cursor plan in
// O(tree depth) memory, writing rows as they are produced) and whether to
// print the query's complexity classification (Theorem 1 / Corollary 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/csvio"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/obs"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
)

type relFlags map[string]string

func (rf relFlags) String() string { return "" }

func (rf relFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	rf[name] = path
	return nil
}

func main() {
	rels := relFlags{}
	flag.Var(rels, "rel", "name=path.csv (repeatable)")
	var (
		q       = flag.String("q", "", "TP set query, e.g. \"c - (a | b)\"")
		algo    = flag.String("algo", "lawa", "execution algorithm: lawa | norm")
		explain = flag.Bool("explain", false, "print the parsed tree and complexity class")
		workers = flag.Int("workers", 1, "evaluate on the partition-parallel engine with this many workers (lawa only; 0 = GOMAXPROCS)")
		stream  = flag.Bool("stream", false, "evaluate through a streaming cursor plan (lawa only): no materialized result, rows written as produced")
		trace   = flag.Bool("trace", false, "print the per-operator execution trace to stderr after the result (lawa only)")
	)
	flag.Parse()
	if *q == "" || len(rels) == 0 {
		fmt.Fprintln(os.Stderr, "tpquery: need -q and at least one -rel name=path")
		os.Exit(2)
	}

	node, err := query.Parse(*q)
	if err != nil {
		fatal("%v", err)
	}
	if *explain {
		fmt.Fprintf(os.Stderr, "query:      %s\n", node)
		fmt.Fprintf(os.Stderr, "relations:  %s\n", strings.Join(query.Relations(node), ", "))
		fmt.Fprintf(os.Stderr, "complexity: %s\n", query.Classify(node))
	}

	db := make(map[string]*relation.Relation, len(rels))
	for name, path := range rels {
		r, err := csvio.ReadFile(path, name)
		if err != nil {
			fatal("loading %s: %v", name, err)
		}
		if err := r.ValidateDuplicateFree(); err != nil {
			fatal("%v", err)
		}
		db[name] = r
	}
	// Rebind all loaded relations onto one shared fact dictionary (each
	// file was interned separately at ingest): the whole query tree then
	// evaluates on integer fact compares.
	all := make([]*relation.Relation, 0, len(db))
	for _, r := range db {
		all = append(all, r)
	}
	relation.InternAll(all...)

	// Tracing evaluates through the cursor plan (the traced execution
	// stack); the trace tree is printed to stderr after the result so
	// stdout stays a clean CSV.
	var span *obs.Span
	opts := core.Options{}
	if *trace {
		if query.Algorithm(*algo) != query.AlgoLAWA {
			fatal("-trace supports only -algo lawa")
		}
		span = obs.NewSpan("")
		opts.Span = span
	}
	printTrace := func() {
		if span != nil {
			fmt.Fprintln(os.Stderr, "trace:")
			span.Snapshot().WriteIndented(os.Stderr)
		}
	}

	if *stream {
		if query.Algorithm(*algo) != query.AlgoLAWA {
			fatal("-stream supports only -algo lawa")
		}
		cur, err := engine.New(engine.Config{Workers: *workers}).
			Cursor(node, db, opts)
		if err != nil {
			fatal("%v", err)
		}
		defer cur.Close()
		sw, err := csvio.NewStreamWriter(os.Stdout, cur.Schema())
		if err != nil {
			fatal("%v", err)
		}
		for {
			t, ok := cur.Next()
			if !ok {
				break
			}
			if err := sw.WriteTuple(&t); err != nil {
				fatal("%v", err)
			}
		}
		if err := sw.Close(); err != nil {
			fatal("%v", err)
		}
		printTrace()
		return
	}

	var out *relation.Relation
	switch {
	case span != nil:
		// Traced: the engine's cursor executor carries the span through
		// every plan (sequential below the partitioning threshold,
		// sharded above it).
		out, err = engine.New(engine.Config{Workers: *workers}).EvalCursor(node, db, opts)
	case (*workers > 1 || *workers == 0) && query.Algorithm(*algo) == query.AlgoLAWA:
		out, err = engine.Eval(node, db, engine.Config{Workers: *workers})
	default:
		out, err = query.EvaluateWith(node, db, query.Algorithm(*algo))
	}
	if err != nil {
		fatal("%v", err)
	}
	out.Sort()
	if err := csvio.Write(os.Stdout, out); err != nil {
		fatal("%v", err)
	}
	printTrace()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpquery: "+format+"\n", args...)
	os.Exit(1)
}
