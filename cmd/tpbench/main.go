// Command tpbench regenerates the tables and figures of the paper's
// experimental evaluation (§VII). Each experiment prints an aligned table
// of runtimes (one row per sweep point, one column per approach) and,
// optionally, CSV for plotting.
//
// Usage:
//
//	tpbench -exp fig7a                 # one experiment
//	tpbench -exp fig7a,fig7b,table4   # several
//	tpbench -all                       # everything, paper order
//	tpbench -all -scale 0.02 -budget 10s -csv out/   # scaled-down quick run
//
// The -scale flag multiplies the paper's dataset sizes (default 0.02:
// Fig. 7 runs at 400–4K tuples, Fig. 8 at 100K–1M). Quadratic baselines
// that exceed -budget on a point are cut off at larger sizes and shown
// as "—", mirroring how the paper drops approaches that fall orders of
// magnitude behind.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/tpset/tpset/internal/bench"
)

func main() {
	var (
		expList  = flag.String("exp", "", "comma-separated experiment names (see -list)")
		all      = flag.Bool("all", false, "run every experiment in paper order")
		list     = flag.Bool("list", false, "list experiment names and exit")
		scale    = flag.Float64("scale", 0.02, "dataset size multiplier relative to the paper")
		budget   = flag.Duration("budget", 15*time.Second, "per-run time budget before an approach is cut off")
		seed     = flag.Int64("seed", 1, "generator seed")
		workers  = flag.Int("workers", 0, "worker budget for the parallel-engine experiments (0 = GOMAXPROCS)")
		csvDir   = flag.String("csv", "", "also write <dir>/<exp>.csv files")
		jsonPath = flag.String("json", "", "also write every run experiment as machine-readable JSON to this file")
		quiet    = flag.Bool("q", false, "suppress per-run progress lines")
		speedups = flag.Bool("speedups", false, "print who-wins-by-what-factor digest per experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the runs) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // materialize a settled heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	var names []string
	switch {
	case *all:
		names = bench.Names()
	case *expList != "":
		names = strings.Split(*expList, ",")
	default:
		fmt.Fprintln(os.Stderr, "tpbench: need -exp <names> or -all (see -list)")
		os.Exit(2)
	}

	cfg := bench.Config{Scale: *scale, Budget: *budget, Seed: *seed, Workers: *workers}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	var results []bench.Result
	for _, name := range names {
		name = strings.TrimSpace(name)
		exp, ok := bench.ExperimentByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "tpbench: unknown experiment %q (see -list)\n", name)
			os.Exit(2)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s: %s\n", exp.Name, exp.Title)
		}
		res := exp.Run(cfg)
		results = append(results, res)
		res.Print(os.Stdout)
		if *speedups {
			if s := res.SpeedupTable(); s != "" {
				fmt.Println(s)
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, res.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			res.PrintCSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: -json: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, results); err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: -json: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: -json: %v\n", err)
			os.Exit(1)
		}
	}
}
