// Command tpvet is the repository's analyzer suite — a multichecker
// (in the `go vet -vettool` mold) running the five repo-specific
// analyzers that machine-check the execution stack's invariants:
//
//	batchpool    core.GetBatch/PutBatch discipline: no pool leaks on
//	             return/error paths, no use of a batch after PutBatch
//	colness      reads of Batch.Fid/Ts/Te/Prob/Lam and relation.Cols
//	             columns must be dominated by a Dict != nil / HasCols
//	             colness check (the SoA fallback contract)
//	atomicfield  struct fields accessed via sync/atomic anywhere must
//	             be accessed atomically everywhere
//	locksnap     catalog state in internal/server is touched only under
//	             the RWMutex or from helpers reached with it held
//	ctxdone      channel-send loops in cancellation-aware producers
//	             must select on ctx.Done()/done
//
// Usage:
//
//	tpvet [-checks batchpool,colness,...] [packages]
//
// Packages default to ./... . Exit status is 1 when any analyzer
// reports a finding, 2 on load/usage errors. Findings can be suppressed
// one site at a time with a justified directive:
//
//	//tpvet:ignore <analyzer> <why this site is safe>
//
// on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/tpset/tpset/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tpvet [-checks names] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.Analyzers() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var analyzers []*analysis.Analyzer
	if *checks == "" {
		analyzers = analysis.Analyzers()
	} else {
		for _, name := range strings.Split(*checks, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tpvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		var fset = pkgs[0].Fset
		fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tpvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
