package tpset

import (
	"encoding/json"
	"io"

	"github.com/tpset/tpset/internal/core"
	"github.com/tpset/tpset/internal/csvio"
	"github.com/tpset/tpset/internal/engine"
	"github.com/tpset/tpset/internal/interval"
	"github.com/tpset/tpset/internal/lineage"
	"github.com/tpset/tpset/internal/query"
	"github.com/tpset/tpset/internal/relation"
	"github.com/tpset/tpset/internal/relops"
	"github.com/tpset/tpset/internal/server"
)

// Re-exported model types. The aliases expose the full method sets of the
// internal implementations as public API.
type (
	// Relation is a duplicate-free temporal-probabilistic relation.
	Relation = relation.Relation
	// Tuple is a TP tuple (F, λ, T, p).
	Tuple = relation.Tuple
	// Fact is the conventional-attribute part of a tuple.
	Fact = relation.Fact
	// Schema names a relation and its conventional attributes.
	Schema = relation.Schema
	// Interval is a half-open interval [Ts, Te) over the time domain.
	Interval = interval.Interval
	// Time is a point of the time domain ΩT.
	Time = interval.Time
	// Lineage is an immutable Boolean lineage formula.
	Lineage = lineage.Expr
	// Window is a lineage-aware temporal window (F, winTs, winTe, λr, λs).
	Window = core.Window
	// Stats summarizes a relation (Table IV metrics).
	Stats = relation.Stats
	// Query is a parsed TP set query (Def. 4).
	Query = query.Node
	// Options tunes the set-operation drivers.
	Options = core.Options
	// Op identifies a TP set operation.
	Op = core.Op
)

// The three TP set operations.
const (
	OpUnion     = core.OpUnion
	OpIntersect = core.OpIntersect
	OpExcept    = core.OpExcept
)

// NewRelation returns an empty relation with the given name and
// conventional attribute names.
func NewRelation(name string, attrs ...string) *Relation {
	return relation.New(relation.NewSchema(name, attrs...))
}

// F builds a fact from attribute values.
func F(values ...string) Fact { return relation.NewFact(values...) }

// NewInterval returns [ts, te); it panics when ts >= te.
func NewInterval(ts, te Time) Interval { return interval.New(ts, te) }

// Union computes r ∪Tp s: at each time point, the facts with non-zero
// probability to be in r or in s (lineage or(λr, λs)).
func Union(r, s *Relation) (*Relation, error) { return core.Union(r, s, core.Options{}) }

// Intersect computes r ∩Tp s: at each time point, the facts with non-zero
// probability to be in r and in s (lineage and(λr, λs)).
func Intersect(r, s *Relation) (*Relation, error) { return core.Intersect(r, s, core.Options{}) }

// Except computes r −Tp s: at each time point, the facts with non-zero
// probability to be in r and not in s (lineage andNot(λr, λs)).
func Except(r, s *Relation) (*Relation, error) { return core.Except(r, s, core.Options{}) }

// Apply dispatches to Union, Intersect or Except with explicit options.
// When opts.Parallelism is above one, the operation runs on the
// partition-parallel execution engine (hash-partitioned by fact, swept
// concurrently, merged back into canonical order); the result is
// tuple-for-tuple identical to the sequential path.
func Apply(op Op, r, s *Relation, opts Options) (*Relation, error) {
	if opts.Parallelism > 1 {
		return engine.Apply(op, r, s, opts)
	}
	return core.Apply(op, r, s, opts)
}

// Windows exposes the raw LAWA window stream for the two relations; mainly
// useful for inspection and teaching (cf. Example 3 of the paper).
func Windows(r, s *Relation) []Window { return core.Windows(r, s) }

// Lineage constructors: variables and the concatenation functions of
// Table I.
var (
	// NewVar returns an atomic lineage variable with probability p.
	NewVar = lineage.Var
	// And returns (l)∧(r).
	And = lineage.And
	// Or returns (l)∨(r), or the non-nil operand when the other is null.
	Or = lineage.Or
	// AndNot returns (l) when r is null and (l)∧¬(r) otherwise.
	AndNot = lineage.AndNot
	// Not returns ¬(e).
	Not = lineage.Not
)

// ParseQuery parses the TP set query surface syntax, e.g. "c - (a | b)" or
// "sigma[Product='milk'](c) & a". See the query package for the grammar.
func ParseQuery(input string) (Query, error) { return query.Parse(input) }

// MustParseQuery is ParseQuery panicking on error.
func MustParseQuery(input string) Query { return query.MustParse(input) }

// Eval evaluates a parsed query over named relations with LAWA. When a
// process-wide parallelism above one has been set with SetParallelism,
// evaluation routes through the partition-parallel engine.
func Eval(q Query, db map[string]*Relation) (*Relation, error) { return query.Evaluate(q, db) }

// EvalParallel evaluates a parsed query on the partition-parallel
// execution engine with the given worker budget: independent subtrees run
// concurrently and every set operation is hash-partitioned by fact across
// a bounded worker pool. workers below one selects runtime.GOMAXPROCS.
// The result is identical to Eval.
func EvalParallel(q Query, db map[string]*Relation, workers int) (*Relation, error) {
	return engine.Eval(q, db, engine.Config{Workers: workers})
}

// SetParallelism sets the process-wide worker budget used by Eval and
// EvalOptimized; values above one route query evaluation through the
// partition-parallel engine. 1 restores strictly sequential evaluation.
func SetParallelism(workers int) { query.SetDefaultParallelism(workers) }

// IsNonRepeating reports whether every relation occurs at most once in q;
// such queries have PTIME data complexity (Theorem 1 / Corollary 1).
func IsNonRepeating(q Query) bool { return query.IsNonRepeating(q) }

// ComputeStats summarizes a relation with the Table IV metrics.
func ComputeStats(r *Relation) Stats { return relation.ComputeStats(r) }

// OverlapFactor computes the §VII-B overlapping factor of an input pair.
func OverlapFactor(r, s *Relation) float64 { return relation.OverlapFactor(r, s) }

// SelectEq computes σ[attr = value](r): the tuples whose attribute equals
// the value. Selections preserve duplicate-freeness and commute with the
// set operations (see OptimizeQuery).
func SelectEq(r *Relation, attr, value string) (*Relation, error) {
	return relops.SelectEq(r, attr, value)
}

// Project computes the TP projection of r onto the named attributes —
// an extension toward the full relational algebra the paper lists as
// future work. Facts that coincide after projection are merged per time
// point by or()-ing their lineages, keeping the result duplicate-free and
// change-preserved. Downstream combinations of projected relations may
// leave the tractable 1OF class; probability valuation then switches to
// exact Shannon expansion automatically.
func Project(r *Relation, attrs ...string) (*Relation, error) {
	return relops.Project(r, attrs...)
}

// OptimizeQuery pushes selections below set operations (a semantics-
// preserving rewrite; selections commute with ∪Tp, ∩Tp and −Tp).
func OptimizeQuery(q Query) Query { return query.PushDownSelections(q) }

// EvalOptimized rewrites and evaluates the query with LAWA.
func EvalOptimized(q Query, db map[string]*Relation) (*Relation, error) {
	return query.Evaluate(query.PushDownSelections(q), db)
}

// SimplifyLineage applies sound syntactic rewrites (double negation,
// idempotence, absorption) that can shrink the repeated-variable patterns
// produced by repeating queries — sometimes back into the tractable 1OF
// class. Semantics (possible-worlds probability) is preserved.
func SimplifyLineage(e *Lineage) *Lineage { return lineage.Simplify(e) }

// ParseLineage parses a rendered lineage formula (e.g. "c1∧¬(a1∨b1)"; the
// ASCII spellings &, |, !, * and + are accepted). Variable probabilities
// are resolved through the probs callback. A nil result with nil error is
// the null lineage.
func ParseLineage(input string, probs func(id string) (float64, error)) (*Lineage, error) {
	return lineage.Parse(input, probs)
}

// CanonicalQuery renders a parsed query in the canonical, re-parseable
// ASCII surface syntax: fully parenthesized, whitespace- and
// spelling-normalized ("union" and "|" render identically). Structurally
// equal trees always render identically, which is what the query service
// (cmd/tpserve) keys its result cache on.
func CanonicalQuery(q Query) string { return query.Canonical(q) }

// MarshalRelationJSON renders a relation in the JSON wire format of the
// query service (cmd/tpserve): one object per tuple with fact values,
// rendered lineage, interval bounds, probability and — for formula
// lineage — the variables' marginal probabilities. Unlike the CSV layout,
// the JSON codec round-trips full lineage structure.
func MarshalRelationJSON(r *Relation) ([]byte, error) {
	return json.Marshal(server.EncodeRelation(r, 0))
}

// UnmarshalRelationJSON reconstructs a relation from the JSON wire format,
// re-parsing every lineage formula. name, when non-empty, overrides the
// name stored in the payload. The result is sorted; duplicate-freeness is
// NOT validated (call ValidateDuplicateFree on data of unknown
// provenance).
func UnmarshalRelationJSON(data []byte, name string) (*Relation, error) {
	var rj server.RelationJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, err
	}
	return server.DecodeRelation(rj, name)
}

// ReadCSV loads a base relation from CSV (columns: facts..., lineage id,
// ts, te, p).
func ReadCSV(rd io.Reader, name string) (*Relation, error) { return csvio.Read(rd, name) }

// WriteCSV stores a relation as CSV.
func WriteCSV(w io.Writer, r *Relation) error { return csvio.Write(w, r) }

// ReadCSVFile loads a relation from the file at path.
func ReadCSVFile(path, name string) (*Relation, error) { return csvio.ReadFile(path, name) }

// WriteCSVFile stores a relation at path.
func WriteCSVFile(path string, r *Relation) error { return csvio.WriteFile(path, r) }
