// Package tpset is a temporal-probabilistic (TP) database library: the
// public API of this repository's reproduction of
//
//	K. Papaioannou, M. Theobald, M. Böhlen:
//	"Supporting Set Operations in Temporal-Probabilistic Databases",
//	ICDE 2018, pp. 1180–1191.
//
// A TP relation is a duplicate-free set of tuples (F, λ, T, p): a fact, a
// Boolean lineage formula over independent base-tuple variables, a
// half-open validity interval and a marginal probability. The library
// evaluates the three TP set operations — union ∪Tp, intersection ∩Tp and
// difference −Tp — under a sequenced possible-worlds semantics, in
// linearithmic time, using the paper's lineage-aware window advancer
// (LAWA).
//
// # Quick start
//
//	a := tpset.NewRelation("bought", "Product")
//	a.AddBase(tpset.F("milk"), "a1", 2, 10, 0.3)
//	c := tpset.NewRelation("stock", "Product")
//	c.AddBase(tpset.F("milk"), "c1", 1, 4, 0.6)
//
//	out, err := tpset.Except(c, a) // 'in stock and not bought'
//
// Each output tuple carries a finalized lineage formula (for example
// c1∧¬a1) and its exact marginal probability. For query trees, parse the
// Def. 4 grammar:
//
//	q, _ := tpset.ParseQuery("c - (a | b)")
//	out, _ := tpset.Eval(q, map[string]*tpset.Relation{"a": a, "b": b, "c": c})
//
// Non-repeating queries (every relation referenced at most once) are
// guaranteed to produce one-occurrence-form lineage, whose probability the
// library computes exactly in linear time; repeating queries fall back to
// exact Shannon expansion (worst-case exponential — the problem is
// #P-hard) or Monte-Carlo estimation.
//
// # Scaling beyond the paper
//
// Two extension tiers wrap the reproduction for production-shaped use:
//
//   - the partition-parallel execution engine (Options.Parallelism,
//     EvalParallel, SetParallelism) hash-partitions every operation by
//     fact across a bounded worker pool with results bit-identical to the
//     sequential path;
//   - the HTTP/JSON query service (cmd/tpserve) serves a versioned
//     relation catalog with an LRU query-result cache keyed on
//     (CanonicalQuery, relation versions); MarshalRelationJSON and
//     UnmarshalRelationJSON expose its wire codec, which — unlike the CSV
//     layout — round-trips full lineage structure.
//
// The internal packages additionally provide the four baselines of the
// paper's evaluation (NORM, TPDB grounding, Timeline Index, OIP), the
// synthetic and real-world-shaped workload generators, and the benchmark
// harness regenerating every figure and table; see DESIGN.md, and
// docs/PAPER_MAP.md for a definition-by-definition concordance between
// the paper and this codebase.
package tpset
