package tpset_test

import (
	"fmt"

	"github.com/tpset/tpset"
)

// The paper's running example (Fig. 1): which products are in stock but
// neither bought nor ordered, per day, with what probability?
func Example() {
	bought := tpset.NewRelation("a", "Product")
	bought.AddBase(tpset.F("milk"), "a1", 2, 10, 0.3)

	ordered := tpset.NewRelation("b", "Product")
	ordered.AddBase(tpset.F("milk"), "b1", 5, 9, 0.6)

	stock := tpset.NewRelation("c", "Product")
	stock.AddBase(tpset.F("milk"), "c1", 1, 4, 0.6)
	stock.AddBase(tpset.F("milk"), "c2", 6, 8, 0.7)

	q, _ := tpset.ParseQuery("c - (a | b)")
	out, _ := tpset.Eval(q, map[string]*tpset.Relation{
		"a": bought, "b": ordered, "c": stock,
	})
	out.Sort()
	for _, t := range out.Tuples {
		fmt.Println(t)
	}
	// Output:
	// ('milk', c1, [1,2), 0.6)
	// ('milk', c1∧¬a1, [2,4), 0.42)
	// ('milk', c2∧¬(a1∨b1), [6,8), 0.196)
}

// Set difference keeps facts the right relation holds with probability
// below 1 — the probabilistic side of −Tp.
func ExampleExcept() {
	observed := tpset.NewRelation("obs", "Item")
	observed.AddBase(tpset.F("pallet"), "o1", 0, 10, 0.9)

	manifest := tpset.NewRelation("man", "Item")
	manifest.AddBase(tpset.F("pallet"), "m1", 4, 6, 0.5)

	out, _ := tpset.Except(observed, manifest)
	out.Sort()
	for _, t := range out.Tuples {
		fmt.Println(t)
	}
	// Output:
	// ('pallet', o1, [0,4), 0.9)
	// ('pallet', o1∧¬m1, [4,6), 0.45)
	// ('pallet', o1, [6,10), 0.9)
}

// Windows exposes the lineage-aware temporal windows LAWA sweeps over
// (Example 3 / Fig. 6 of the paper).
func ExampleWindows() {
	c := tpset.NewRelation("c", "Product")
	c.AddBase(tpset.F("milk"), "c1", 1, 4, 0.6)
	c.AddBase(tpset.F("milk"), "c2", 6, 8, 0.7)
	a := tpset.NewRelation("a", "Product")
	a.AddBase(tpset.F("milk"), "a1", 2, 10, 0.3)

	for _, w := range tpset.Windows(c, a) {
		fmt.Println(w)
	}
	// Output:
	// (('milk'),[1,2), c1, null)
	// (('milk'),[2,4), c1, a1)
	// (('milk'),[4,6), null, a1)
	// (('milk'),[6,8), c2, a1)
	// (('milk'),[8,10), null, a1)
}
